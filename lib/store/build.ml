module Graph = Nf_graph.Graph
module Pool = Nf_util.Pool
module Stats = Nf_util.Stats
open Netform

type outcome = {
  path : string;
  n : int;
  with_ucg : bool;
  chunks : int;
  records : int;
  resumed_records : int;
  seconds : float;
}

(* One workspace borrow covers both annotations: the worker domain's
   resident kernel scratch is reused for every record it processes. *)
let annotate_record ~with_ucg g =
  Nf_graph.Kernel.with_ws (fun ws ->
      {
        Layout.graph6 = Nf_graph.Graph6.encode g;
        bcg = Bcg.stable_alpha_set_ws ws g;
        ucg = (if with_ucg then Some (Ucg.nash_alpha_set_ws ws g) else None);
      })

(* The sweep: stream connected classes in chunks off the enumeration
   engine (never materializing the level), annotate each chunk across the
   domain pool, and append it.  Chunk boundaries come from the header's
   chunk size, so a resumed run regenerates exactly the chunks the
   interrupted one would have written next — the enumeration order and
   the annotation are deterministic, which makes resume byte-exact. *)
let run ~writer ~skip_chunks ~report =
  let header = writer.Writer.header in
  let n = header.Layout.n
  and with_ucg = header.Layout.with_ucg
  and chunk = header.Layout.chunk_size in
  let start = Unix.gettimeofday () in
  let resumed_records = writer.Writer.records in
  let meter =
    Stats.Progress.create
      ?total:(Nf_enum.Counts.connected_graphs n)
      ~initial:resumed_records ~now:Unix.gettimeofday ()
  in
  let ci = ref 0 in
  Nf_enum.Unlabeled.iter_connected_chunked ~chunk n (fun graphs ->
      let i = !ci in
      incr ci;
      if i >= skip_chunks then begin
        let records = Pool.parallel_map_array (annotate_record ~with_ucg) graphs in
        Writer.append_chunk writer records;
        Stats.Progress.tick meter (Array.length graphs);
        report
          (Printf.sprintf "chunk %d: %d classes annotated  %s" i (Array.length graphs)
             (Stats.Progress.line meter))
      end);
  Writer.finalize writer;
  {
    path = writer.Writer.final_path;
    n;
    with_ucg;
    chunks = writer.Writer.chunks;
    records = writer.Writer.records;
    resumed_records;
    seconds = Unix.gettimeofday () -. start;
  }

let build ?with_ucg ?(chunk = 512) ?(force = false) ?(report = ignore) ~path ~n () =
  if n < 1 || n > 11 then invalid_arg "Build.build: n out of range (1..11)";
  if chunk < 1 then invalid_arg "Build.build: chunk < 1";
  let with_ucg = Option.value ~default:(n <= 7) with_ucg in
  if Sys.file_exists path && not force then
    failwith (Printf.sprintf "%s already exists (pass force to rebuild)" path);
  let writer = Writer.create ~path ~header:{ Layout.n; with_ucg; chunk_size = chunk } in
  match run ~writer ~skip_chunks:0 ~report with
  | outcome -> outcome
  | exception e ->
    Writer.abort writer;
    raise e

let resume ?(report = ignore) ~path () =
  let part = Writer.part_path path in
  if not (Sys.file_exists part) then
    if Sys.file_exists path then
      failwith (Printf.sprintf "%s is already a complete store (no part file to resume)" path)
    else failwith (Printf.sprintf "nothing to resume: neither %s nor %s exists" part path);
  let writer, scan = Writer.reopen ~path in
  report
    (Printf.sprintf "resuming %s: %d records in %d complete chunks survive" part
       scan.Reader.records scan.Reader.chunks);
  match run ~writer ~skip_chunks:scan.Reader.chunks ~report with
  | outcome -> outcome
  | exception e ->
    Writer.abort writer;
    raise e
