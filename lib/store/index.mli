(** The warm in-memory face of a store: records loaded once, graphs
    decoded lazily (and at most once), ready for repeated α-queries.

    A store here is either a single file — whole or one shard volume —
    or a {e directory} of shard volumes, which loads as the exact store
    their {!Merge} would produce (same entries, same order), so queries
    never need to know whether a build was sharded. *)

type t

val load : path:string -> t
(** Load a complete store's records into memory.  When [path] is a
    directory, loads it as the complete shard family it must contain
    (see {!load_dir}).
    @raise Layout.Corrupt when the store is incomplete or invalid. *)

val load_dir : dir:string -> t
(** Load a directory of shard volumes as one logical store: the volumes
    must form exactly one complete [k]-way family
    ({!Merge.family}), and the entries are their records concatenated
    in shard index order — identical to the merged store's.
    @raise Failure when the volumes do not form a complete family.
    @raise Layout.Corrupt when any volume is incomplete or invalid. *)

val path : t -> string
val n : t -> int

val content : t -> Layout.content
(** What the records carry (classic dual-region or single-game). *)

val with_ucg : t -> bool
(** Whether records carry the classic UCG payload
    ([Layout.content_with_ucg] of {!content}). *)

val game : t -> string
(** Registry name of the annotating game (classic stores read as
    ["bcg"]/["ucg"]). *)

val shard : t -> (int * int) option
(** Shard metadata of the loaded volume; [None] for whole stores and
    for directory loads (a complete family reads as the merged whole). *)

val length : t -> int
(** Number of annotated classes. *)

val entries : t -> Layout.record array
(** The records in enumeration order.  Callers must not mutate. *)

val graphs : t -> Nf_graph.Graph.t array
(** Decoded representatives aligned with {!entries}, memoized on first
    use. *)
