(** The warm in-memory face of a store: records loaded once, graphs
    decoded lazily (and at most once), ready for repeated α-queries. *)

type t

val load : path:string -> t
(** Load a complete store's records into memory.
    @raise Layout.Corrupt when the store is incomplete or invalid. *)

val path : t -> string
val n : t -> int

val content : t -> Layout.content
(** What the records carry (classic dual-region or single-game). *)

val with_ucg : t -> bool
(** Whether records carry the classic UCG payload
    ([Layout.content_with_ucg] of {!content}). *)

val game : t -> string
(** Registry name of the annotating game (classic stores read as
    ["bcg"]/["ucg"]). *)

val length : t -> int
(** Number of annotated classes. *)

val entries : t -> Layout.record array
(** The records in enumeration order.  Callers must not mutate. *)

val graphs : t -> Nf_graph.Graph.t array
(** Decoded representatives aligned with {!entries}, memoized on first
    use. *)
