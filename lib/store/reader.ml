type scan = {
  header : Layout.header;
  chunks : int;
  records : int;
  data_end : int;
  complete : bool;
}

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Tolerant prefix scan: the longest valid prefix [header; chunk 0; ...;
   chunk k-1] is identified and anything after it — a partially written
   chunk from a killed build, or trailing corruption — is ignored.  The
   chunks themselves are still CRC-verified and fully parsed, so the
   prefix a resume continues from is known-good. *)
let scan_string s =
  let header = Layout.decode_header s in
  let len = String.length s in
  let pos = ref Layout.header_size in
  let data_end = ref Layout.header_size in
  let chunks = ref 0 in
  let records = ref 0 in
  let complete = ref false in
  let stop = ref false in
  while not !stop do
    if !pos >= len then stop := true
    else if Layout.is_footer_at s !pos then begin
      (match Layout.decode_footer s ~pos:!pos with
      | total_chunks, total_records, next ->
        if total_chunks = !chunks && total_records = !records && next = len then complete := true
      | exception Layout.Corrupt _ -> ());
      stop := true
    end
    else
      match Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos with
      | index, recs, next ->
        if index <> !chunks then stop := true
        else begin
          chunks := !chunks + 1;
          records := !records + Array.length recs;
          pos := next;
          data_end := next
        end
      | exception Layout.Corrupt _ -> stop := true
  done;
  { header; chunks = !chunks; records = !records; data_end = !data_end; complete = !complete }

let scan ~path = scan_string (read_file path)

(* Strict verification: every byte of the file must be accounted for by a
   valid header, consecutively numbered CRC-clean chunks, and a footer
   whose totals match.  Each record's graph must decode to a graph6
   string of the header's order, so a flipped byte anywhere — header,
   chunk framing, chunk body, footer — is reported, pinned to the
   offending chunk index and the byte offset its frame starts at (a
   damaged multi-gigabyte shard volume is useless to re-transfer whole;
   the message names the region to refetch). *)
let verify_string s =
  try
    let header = Layout.decode_header s in
    let len = String.length s in
    let pos = ref Layout.header_size in
    let chunks = ref 0 in
    let records = ref 0 in
    while !pos < len && not (Layout.is_footer_at s !pos) do
      let frame_start = !pos in
      let in_chunk fmt =
        Printf.ksprintf
          (fun m ->
            raise
              (Layout.Corrupt
                 (Printf.sprintf "chunk %d (frame at byte %d): %s" !chunks frame_start m)))
          fmt
      in
      let index, recs, next =
        match Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos with
        | decoded -> decoded
        | exception Layout.Corrupt msg -> in_chunk "%s" msg
      in
      if index <> !chunks then in_chunk "chunk %d out of sequence (expected %d)" index !chunks;
      if Array.length recs = 0 then in_chunk "chunk is empty";
      if Array.length recs > header.Layout.chunk_size then
        in_chunk "chunk holds %d records, above the declared chunk size %d" (Array.length recs)
          header.Layout.chunk_size;
      Array.iter
        (fun r ->
          match Nf_graph.Graph6.decode r.Layout.graph6 with
          | g ->
            if Nf_graph.Graph.order g <> header.Layout.n then
              in_chunk "record has order %d, store is for n = %d" (Nf_graph.Graph.order g)
                header.Layout.n
          | exception Invalid_argument msg -> in_chunk "bad graph6: %s" msg)
        recs;
      chunks := !chunks + 1;
      records := !records + Array.length recs;
      pos := next
    done;
    if !pos >= len then raise (Layout.Corrupt "missing footer (incomplete build?)");
    let total_chunks, total_records, next = Layout.decode_footer s ~pos:!pos in
    if total_chunks <> !chunks then
      raise
        (Layout.Corrupt
           (Printf.sprintf "footer declares %d chunks, file holds %d" total_chunks !chunks));
    if total_records <> !records then
      raise
        (Layout.Corrupt
           (Printf.sprintf "footer declares %d records, file holds %d" total_records !records));
    if next <> len then
      raise (Layout.Corrupt (Printf.sprintf "%d trailing bytes after footer" (len - next)));
    Ok { header; chunks = !chunks; records = !records; data_end = !pos; complete = true }
  with Layout.Corrupt msg -> Error msg

let verify ~path =
  match read_file path with
  | s -> verify_string s
  | exception Sys_error msg -> Error msg

let load ~path =
  let s = read_file path in
  let header = Layout.decode_header s in
  let scan = scan_string s in
  if not scan.complete then
    raise
      (Layout.Corrupt
         (Printf.sprintf "%s: incomplete store (%d records in %d complete chunks; resume the build)"
            path scan.records scan.chunks));
  let out = Array.make scan.records { Layout.graph6 = ""; bcg = Nf_util.Interval.empty; ucg = None } in
  let pos = ref Layout.header_size in
  let filled = ref 0 in
  for _ = 1 to scan.chunks do
    let _, recs, next = Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos in
    Array.blit recs 0 out !filled (Array.length recs);
    filled := !filled + Array.length recs;
    pos := next
  done;
  (header, out)
