type scan = {
  header : Layout.header;
  chunks : int;
  records : int;
  data_end : int;
  complete : bool;
}

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* Tolerant prefix scan: the longest valid prefix [header; chunk 0; ...;
   chunk k-1] is identified and anything after it — a partially written
   chunk from a killed build, or trailing corruption — is ignored.  The
   chunks themselves are still CRC-verified and fully parsed, so the
   prefix a resume continues from is known-good. *)
let scan_string s =
  let header = Layout.decode_header s in
  let len = String.length s in
  let pos = ref Layout.header_size in
  let data_end = ref Layout.header_size in
  let chunks = ref 0 in
  let records = ref 0 in
  let complete = ref false in
  let stop = ref false in
  while not !stop do
    if !pos >= len then stop := true
    else if Layout.is_footer_at s !pos then begin
      (match Layout.decode_footer s ~pos:!pos with
      | total_chunks, total_records, next ->
        if total_chunks = !chunks && total_records = !records && next = len then complete := true
      | exception Layout.Corrupt _ -> ());
      stop := true
    end
    else
      match Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos with
      | index, recs, next ->
        if index <> !chunks then stop := true
        else begin
          chunks := !chunks + 1;
          records := !records + Array.length recs;
          pos := next;
          data_end := next
        end
      | exception Layout.Corrupt _ -> stop := true
  done;
  { header; chunks = !chunks; records = !records; data_end = !data_end; complete = !complete }

let scan ~path = scan_string (read_file path)

(* Strict verification: every byte of the file must be accounted for by a
   valid header, consecutively numbered CRC-clean chunks, and a footer
   whose totals match.  Each record's graph must decode to a graph6
   string of the header's order, so a flipped byte anywhere — header,
   chunk framing, chunk body, footer — is reported, pinned to the
   offending chunk index and the byte offset its frame starts at (a
   damaged multi-gigabyte shard volume is useless to re-transfer whole;
   the message names the region to refetch). *)
let verify_string s =
  try
    let header = Layout.decode_header s in
    let len = String.length s in
    let pos = ref Layout.header_size in
    let chunks = ref 0 in
    let records = ref 0 in
    while !pos < len && not (Layout.is_footer_at s !pos) do
      let frame_start = !pos in
      let in_chunk fmt =
        Printf.ksprintf
          (fun m ->
            raise
              (Layout.Corrupt
                 (Printf.sprintf "chunk %d (frame at byte %d): %s" !chunks frame_start m)))
          fmt
      in
      let index, recs, next =
        match Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos with
        | decoded -> decoded
        | exception Layout.Corrupt msg -> in_chunk "%s" msg
      in
      if index <> !chunks then in_chunk "chunk %d out of sequence (expected %d)" index !chunks;
      if Array.length recs = 0 then in_chunk "chunk is empty";
      if Array.length recs > header.Layout.chunk_size then
        in_chunk "chunk holds %d records, above the declared chunk size %d" (Array.length recs)
          header.Layout.chunk_size;
      Array.iter
        (fun r ->
          match Nf_graph.Graph6.decode r.Layout.graph6 with
          | g ->
            if Nf_graph.Graph.order g <> header.Layout.n then
              in_chunk "record has order %d, store is for n = %d" (Nf_graph.Graph.order g)
                header.Layout.n
          | exception Invalid_argument msg -> in_chunk "bad graph6: %s" msg)
        recs;
      chunks := !chunks + 1;
      records := !records + Array.length recs;
      pos := next
    done;
    if !pos >= len then raise (Layout.Corrupt "missing footer (incomplete build?)");
    let total_chunks, total_records, next = Layout.decode_footer s ~pos:!pos in
    if total_chunks <> !chunks then
      raise
        (Layout.Corrupt
           (Printf.sprintf "footer declares %d chunks, file holds %d" total_chunks !chunks));
    if total_records <> !records then
      raise
        (Layout.Corrupt
           (Printf.sprintf "footer declares %d records, file holds %d" total_records !records));
    if next <> len then
      raise (Layout.Corrupt (Printf.sprintf "%d trailing bytes after footer" (len - next)));
    Ok { header; chunks = !chunks; records = !records; data_end = !pos; complete = true }
  with Layout.Corrupt msg -> Error msg

let verify ~path =
  match read_file path with
  | s -> verify_string s
  | exception Sys_error msg -> Error msg

(* --- streaming (channel) access --------------------------------------

   Constant-memory counterparts of the whole-file string paths above:
   the store is pulled through the channel one frame at a time, so an
   n=10-scale volume streams through a merge or a verification without
   ever being resident as a string.  Strictness matches [verify]: every
   chunk is CRC-checked by [Layout.decode_chunk] as it passes, chunks
   must be consecutively numbered, the footer totals must match the
   stream, and nothing may follow the footer. *)

let really_read ic len what =
  match In_channel.really_input_string ic len with
  | Some s -> s
  | None -> raise (Layout.Corrupt (Printf.sprintf "unexpected end of file reading %s" what))

let fold_chunks ~path ~init f =
  In_channel.with_open_bin path (fun ic ->
      let header = Layout.decode_header (really_read ic Layout.header_size "header") in
      let content = header.Layout.content in
      let chunks = ref 0 in
      let records = ref 0 in
      let acc = ref init in
      let finished = ref false in
      while not !finished do
        let magic = really_read ic 4 "frame magic" in
        if magic = Layout.footer_magic then begin
          let footer = magic ^ really_read ic (Layout.footer_size - 4) "footer" in
          let total_chunks, total_records, _ = Layout.decode_footer footer ~pos:0 in
          if total_chunks <> !chunks then
            raise
              (Layout.Corrupt
                 (Printf.sprintf "footer declares %d chunks, stream held %d" total_chunks !chunks));
          if total_records <> !records then
            raise
              (Layout.Corrupt
                 (Printf.sprintf "footer declares %d records, stream held %d" total_records
                    !records));
          (match In_channel.input_char ic with
          | Some _ -> raise (Layout.Corrupt "trailing bytes after footer")
          | None -> ());
          finished := true
        end
        else if magic = Layout.chunk_magic then begin
          let head = really_read ic (Layout.chunk_header_size - 4) "chunk header" in
          (* body length sits at frame offset 12 = offset 8 of [head] *)
          let body_len = Int32.to_int (String.get_int32_le head 8) land 0xFFFFFFFF in
          let frame = magic ^ head ^ really_read ic (body_len + 4) "chunk body" in
          let index, recs, _ = Layout.decode_chunk ~content frame ~pos:0 in
          if index <> !chunks then
            raise
              (Layout.Corrupt
                 (Printf.sprintf "chunk %d out of sequence (expected %d)" index !chunks));
          acc := f header !acc index recs;
          chunks := !chunks + 1;
          records := !records + Array.length recs
        end
        else
          raise
            (Layout.Corrupt
               (Printf.sprintf "bad frame magic after chunk %d (incomplete build?)" !chunks))
      done;
      (header, !acc, !chunks, !records))

let verify_stream ~path =
  try
    let header, (), chunks, records =
      fold_chunks ~path ~init:() (fun header () index recs ->
          let in_chunk fmt =
            Printf.ksprintf
              (fun m -> raise (Layout.Corrupt (Printf.sprintf "chunk %d: %s" index m)))
              fmt
          in
          if Array.length recs = 0 then in_chunk "chunk is empty";
          if Array.length recs > header.Layout.chunk_size then
            in_chunk "chunk holds %d records, above the declared chunk size %d" (Array.length recs)
              header.Layout.chunk_size;
          Array.iter
            (fun r ->
              match Nf_graph.Graph6.decode r.Layout.graph6 with
              | g ->
                if Nf_graph.Graph.order g <> header.Layout.n then
                  in_chunk "record has order %d, store is for n = %d" (Nf_graph.Graph.order g)
                    header.Layout.n
              | exception Invalid_argument msg -> in_chunk "bad graph6: %s" msg)
            recs)
    in
    let data_end = (Unix.stat path).Unix.st_size - Layout.footer_size in
    Ok { header; chunks; records; data_end; complete = true }
  with
  | Layout.Corrupt msg -> Error msg
  | Sys_error msg -> Error msg

let load ~path =
  let s = read_file path in
  let header = Layout.decode_header s in
  let scan = scan_string s in
  if not scan.complete then
    raise
      (Layout.Corrupt
         (Printf.sprintf "%s: incomplete store (%d records in %d complete chunks; resume the build)"
            path scan.records scan.chunks));
  let out = Array.make scan.records { Layout.graph6 = ""; bcg = Nf_util.Interval.empty; ucg = None } in
  let pos = ref Layout.header_size in
  let filled = ref 0 in
  for _ = 1 to scan.chunks do
    let _, recs, next = Layout.decode_chunk ~content:header.Layout.content s ~pos:!pos in
    Array.blit recs 0 out !filled (Array.length recs);
    filled := !filled + Array.length recs;
    pos := next
  done;
  (header, out)
