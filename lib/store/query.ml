module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Rat = Nf_util.Rat

let stable_entries index ~alpha =
  let entries = Index.entries index in
  let out = ref [] in
  for i = Array.length entries - 1 downto 0 do
    if Interval.mem alpha entries.(i).Layout.bcg then out := i :: !out
  done;
  !out

let nash_entries index ~alpha =
  if not (Index.with_ucg index) then
    invalid_arg "Query.nash_entries: store was built without UCG annotations";
  let entries = Index.entries index in
  let out = ref [] in
  for i = Array.length entries - 1 downto 0 do
    match entries.(i).Layout.ucg with
    | Some u when Interval.Union.mem alpha u -> out := i :: !out
    | _ -> ()
  done;
  !out

let graphs_of index idxs =
  let gs = Index.graphs index in
  List.map (fun i -> gs.(i)) idxs

let bcg_stable_graphs index ~alpha = graphs_of index (stable_entries index ~alpha)
let ucg_nash_graphs index ~alpha = graphs_of index (nash_entries index ~alpha)

let figure_points index ?grid () =
  Nf_analysis.Figures.sweep_via
    ~bcg:(fun ~alpha -> bcg_stable_graphs index ~alpha)
    ~ucg:(fun ~alpha -> ucg_nash_graphs index ~alpha)
    ?grid ()

let to_entries index =
  let gs = Index.graphs index in
  Array.to_list
    (Array.mapi
       (fun i r ->
         {
           Nf_analysis.Dataset.graph = gs.(i);
           bcg_stable = r.Layout.bcg;
           ucg_nash = r.Layout.ucg;
         })
       (Index.entries index))

let to_csv index = Nf_analysis.Dataset.to_csv (to_entries index)
