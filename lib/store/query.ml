module Graph = Nf_graph.Graph
module Interval = Nf_util.Interval
module Rat = Nf_util.Rat

let stable_entries index ~alpha =
  let entries = Index.entries index in
  let out = ref [] in
  for i = Array.length entries - 1 downto 0 do
    if Interval.mem alpha entries.(i).Layout.bcg then out := i :: !out
  done;
  !out

let nash_entries index ~alpha =
  if not (Index.with_ucg index) then
    invalid_arg "Query.nash_entries: store was built without UCG annotations";
  let entries = Index.entries index in
  let out = ref [] in
  for i = Array.length entries - 1 downto 0 do
    match entries.(i).Layout.ucg with
    | Some u when Interval.Union.mem alpha u -> out := i :: !out
    | _ -> ()
  done;
  !out

let graphs_of index idxs =
  let gs = Index.graphs index in
  List.map (fun i -> gs.(i)) idxs

let bcg_stable_graphs index ~alpha = graphs_of index (stable_entries index ~alpha)
let ucg_nash_graphs index ~alpha = graphs_of index (nash_entries index ~alpha)

(* The registry-generic query: which region a record's stability lives in
   is decided by the store's content descriptor, so the dispatch below is
   the read-side mirror of [Build.annotator_of_content].  Classic stores
   serve "bcg" from the interval column and "ucg" from the union column;
   a single-game store serves exactly the game it was built for. *)
let game_entries index ~game ~alpha =
  let reject want =
    invalid_arg
      (Printf.sprintf "Query.game_entries: store carries %S annotations, not %S"
         (Index.game index) want)
  in
  match Index.content index with
  | Layout.Classic { with_ucg } ->
    if game = "bcg" then stable_entries index ~alpha
    else if game = "ucg" then
      if with_ucg then nash_entries index ~alpha else reject game
    else reject game
  | Layout.Game { tag; union } ->
    (match Build.content_of_game game with
    | Layout.Game { tag = want_tag; union = _ } when want_tag = tag ->
      let entries = Index.entries index in
      let out = ref [] in
      if union then
        for i = Array.length entries - 1 downto 0 do
          match entries.(i).Layout.ucg with
          | Some u when Interval.Union.mem alpha u -> out := i :: !out
          | _ -> ()
        done
      else
        for i = Array.length entries - 1 downto 0 do
          if Interval.mem alpha entries.(i).Layout.bcg then out := i :: !out
        done;
      !out
    | _ -> reject game)

let game_stable_graphs index ~game ~alpha = graphs_of index (game_entries index ~game ~alpha)

let figure_points index ?grid () =
  Nf_analysis.Figures.sweep_via
    ~bcg:(fun ~alpha -> bcg_stable_graphs index ~alpha)
    ~ucg:(fun ~alpha -> ucg_nash_graphs index ~alpha)
    ?grid ()

let game_figure_points index ?grid () =
  let game = Index.game index in
  let packed = Netform.Game_registry.find_exn game in
  Nf_analysis.Figures.sweep_game_via packed
    ~stable:(fun ~alpha -> game_stable_graphs index ~game ~alpha)
    ?grid ()

let to_entries index =
  let gs = Index.graphs index in
  Array.to_list
    (Array.mapi
       (fun i r ->
         {
           Nf_analysis.Dataset.graph = gs.(i);
           bcg_stable = r.Layout.bcg;
           ucg_nash = r.Layout.ucg;
         })
       (Index.entries index))

let to_csv index = Nf_analysis.Dataset.to_csv (to_entries index)
