(** Binary on-disk layout of the equilibrium-atlas store.

    A store file is a fixed header keyed by [(n, game flags, schema
    version)], a run of self-describing CRC-32-framed chunks of records
    (one record per connected isomorphism class: graph6 string, exact BCG
    stable interval, optional UCG Nash α-set), and a footer with the
    totals.  All integers are little endian and nothing machine- or
    time-dependent is ever written, so a store's bytes are a pure
    function of [(n, flags, chunk size)] — the property the
    crash-resume parity guarantee rests on.

    Decoding never trusts the input: every read is bounds-checked and
    every frame is CRC-verified before its records are parsed, so
    truncated or corrupted files raise {!Corrupt} rather than producing
    garbage (or a crash). *)

(** What a store's records carry, encoded in the header flags.
    [Classic] is the original dual-region layout (BCG interval, plus the
    UCG union when [with_ucg]) — its two flag values are exactly the
    pre-registry encodings, so existing stores are byte-identical.
    [Game] is a single-game store: one region per record, shaped by
    [union], for the registered game with that schema [tag]
    ({!Netform.Game.S.schema_tag}). *)
type content = Classic of { with_ucg : bool } | Game of { tag : int; union : bool }

type header = {
  n : int;  (** number of players / vertices, [1..62] *)
  content : content;  (** record payload layout *)
  chunk_size : int;  (** records per full chunk (the last may be short) *)
  shard : (int * int) option;
      (** [Some (i, k)]: this volume holds shard [i] of a [k]-way
          parent-prefix split of the enumeration stream
          ({!Nf_enum.Unlabeled.iter_connected_sharded}); [None] for a
          whole (unsharded or merged) store.  Encoded append-only in
          flag bits 24..31, so unsharded stores keep their exact
          pre-shard bytes. *)
}

type record = {
  graph6 : string;
  bcg : Nf_util.Interval.t;
      (** the interval region ([Interval.empty] and unused in
          union-game stores) *)
  ucg : Nf_util.Interval.Union.t option;
      (** [Some] iff the content is classic-with-UCG or a union game *)
}

val content_with_ucg : content -> bool
(** Whether records carry the classic UCG payload. *)

val classic : with_ucg:bool -> content

val flags_of_content : content -> int
(** The header flags word: [Classic] encodes to the pre-registry values
    0/1; [Game] sets bit 1, bit 2 for a union region, and the schema tag
    in bits 8..23.
    @raise Invalid_argument when the tag is outside [0..0xFFFF]. *)

val content_of_flags : int -> content
(** Strict inverse — any unknown flag bit raises {!Corrupt} rather than
    being ignored, so a store written by a future schema is rejected.
    Shard bits (24..31) are {e not} accepted here; {!decode_header}
    strips them via {!shard_of_flags} first. *)

val max_shards : int
(** Largest representable shard count (16: four flag bits). *)

val shard_flag_bits : (int * int) option -> int
(** Shard metadata as flag bits 24..31 ([0] for [None]).
    @raise Invalid_argument outside [1 <= i <= k], [2 <= k <= 16]. *)

val shard_of_flags : int -> (int * int) option
(** Strict inverse of {!shard_flag_bits} on bits 24..31.
    @raise Corrupt on malformed shard metadata (index without a count,
    or index above the count). *)

exception Corrupt of string
(** Raised by every [decode_*] function on malformed input. *)

val magic : string
val chunk_magic : string
val footer_magic : string
val schema_version : int
val header_size : int
val chunk_header_size : int
val footer_size : int

val encode_header : header -> string
(** @raise Invalid_argument when [n] or [chunk_size] is out of range. *)

val decode_header : string -> header
(** Validates magic, CRC, schema version and field ranges on the first
    {!header_size} bytes. *)

val encode_chunk : index:int -> content:content -> record array -> string
(** One framed chunk: header, record bodies, trailing CRC over the
    whole frame.
    @raise Invalid_argument when a record's payload contradicts
    [content]. *)

val decode_chunk : content:content -> string -> pos:int -> int * record array * int
(** [decode_chunk ~content s ~pos] is [(index, records, next_pos)].
    The CRC is verified {e before} any record is parsed. *)

val encode_footer : chunks:int -> records:int -> string
val decode_footer : string -> pos:int -> int * int * int
(** [(chunks, records, next_pos)]. *)

val is_footer_at : string -> int -> bool
(** Whether the footer magic starts at this offset (peek only — the
    footer may still fail {!decode_footer}). *)
