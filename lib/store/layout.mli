(** Binary on-disk layout of the equilibrium-atlas store.

    A store file is a fixed header keyed by [(n, game flags, schema
    version)], a run of self-describing CRC-32-framed chunks of records
    (one record per connected isomorphism class: graph6 string, exact BCG
    stable interval, optional UCG Nash α-set), and a footer with the
    totals.  All integers are little endian and nothing machine- or
    time-dependent is ever written, so a store's bytes are a pure
    function of [(n, flags, chunk size)] — the property the
    crash-resume parity guarantee rests on.

    Decoding never trusts the input: every read is bounds-checked and
    every frame is CRC-verified before its records are parsed, so
    truncated or corrupted files raise {!Corrupt} rather than producing
    garbage (or a crash). *)

type header = {
  n : int;  (** number of players / vertices, [1..62] *)
  with_ucg : bool;  (** records carry a UCG Nash α-set *)
  chunk_size : int;  (** records per full chunk (the last may be short) *)
}

type record = {
  graph6 : string;
  bcg : Nf_util.Interval.t;
  ucg : Nf_util.Interval.Union.t option;
      (** [Some] iff the header's [with_ucg] flag is set *)
}

exception Corrupt of string
(** Raised by every [decode_*] function on malformed input. *)

val magic : string
val schema_version : int
val header_size : int
val chunk_header_size : int
val footer_size : int

val encode_header : header -> string
(** @raise Invalid_argument when [n] or [chunk_size] is out of range. *)

val decode_header : string -> header
(** Validates magic, CRC, schema version and field ranges on the first
    {!header_size} bytes. *)

val encode_chunk : index:int -> with_ucg:bool -> record array -> string
(** One framed chunk: header, record bodies, trailing CRC over the
    whole frame.
    @raise Invalid_argument when a record's UCG payload contradicts
    [with_ucg]. *)

val decode_chunk : with_ucg:bool -> string -> pos:int -> int * record array * int
(** [decode_chunk ~with_ucg s ~pos] is [(index, records, next_pos)].
    The CRC is verified {e before} any record is parsed. *)

val encode_footer : chunks:int -> records:int -> string
val decode_footer : string -> pos:int -> int * int * int
(** [(chunks, records, next_pos)]. *)

val is_footer_at : string -> int -> bool
(** Whether the footer magic starts at this offset (peek only — the
    footer may still fail {!decode_footer}). *)
