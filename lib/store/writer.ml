(* Append-only store writer with crash-safe publication.

   A build in progress lives at [path ^ ".part"]; chunks are appended and
   flushed one at a time, so a build killed at any moment (even kill -9)
   leaves a part file whose longest valid prefix is exactly the chunks
   whose appends completed — {!Reader.scan} finds it and {!reopen}
   truncates the torn tail away.  Only {!finalize} writes the footer,
   fsyncs, and atomically renames the part file onto the final path, so a
   file at [path] is always a complete, verified store. *)

type t = {
  oc : out_channel;
  final_path : string;
  part : string;
  header : Layout.header;
  mutable chunks : int;
  mutable records : int;
  mutable closed : bool;
}

let part_path path = path ^ ".part"

let create ~path ~header =
  let part = part_path path in
  let oc = open_out_bin part in
  output_string oc (Layout.encode_header header);
  flush oc;
  { oc; final_path = path; part; header; chunks = 0; records = 0; closed = false }

let reopen ~path =
  let part = part_path path in
  let scan = Reader.scan ~path:part in
  if scan.Reader.complete then
    invalid_arg "Writer.reopen: part file already holds a complete store";
  (* drop the torn tail, then append from the end of the valid prefix *)
  let fd = Unix.openfile part [ Unix.O_WRONLY ] 0o644 in
  Unix.ftruncate fd scan.Reader.data_end;
  ignore (Unix.lseek fd scan.Reader.data_end Unix.SEEK_SET);
  let oc = Unix.out_channel_of_descr fd in
  ( {
      oc;
      final_path = path;
      part;
      header = scan.Reader.header;
      chunks = scan.Reader.chunks;
      records = scan.Reader.records;
      closed = false;
    },
    scan )

let append_chunk t records =
  if t.closed then invalid_arg "Writer.append_chunk: writer is closed";
  if Array.length records = 0 then invalid_arg "Writer.append_chunk: empty chunk";
  output_string t.oc
    (Layout.encode_chunk ~index:t.chunks ~content:t.header.Layout.content records);
  flush t.oc;
  t.chunks <- t.chunks + 1;
  t.records <- t.records + Array.length records

let finalize t =
  if t.closed then invalid_arg "Writer.finalize: writer is closed";
  output_string t.oc (Layout.encode_footer ~chunks:t.chunks ~records:t.records);
  flush t.oc;
  Unix.fsync (Unix.descr_of_out_channel t.oc);
  close_out t.oc;
  t.closed <- true;
  Sys.rename t.part t.final_path

let abort t =
  if not t.closed then begin
    close_out_noerr t.oc;
    t.closed <- true
  end
