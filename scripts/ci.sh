#!/bin/sh
# CI smoke job: build, then run the full @runtest alias on both the forced
# sequential path and an oversubscribed parallel domain pool, so the
# jobs=1 / jobs=N parity that the library promises (identical results
# whatever the pool width) is exercised on every PR.  A quick bench pass
# then writes BENCH_<ts>.json — the machine-readable perf-trajectory
# record tracked across PRs.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (NETFORM_JOBS=1, sequential path) =="
NETFORM_JOBS=1 dune runtest --force

echo "== dune runtest (NETFORM_JOBS=4, parallel path) =="
NETFORM_JOBS=4 dune runtest --force

echo "== bench smoke pass (perf-trajectory JSON) =="
NETFORM_BENCH_SKIP_EXPERIMENTS=1 NETFORM_BENCH_QUICK=1 dune exec bench/main.exe

echo "ci.sh: all green"
