#!/bin/sh
# CI smoke job: build, then run the full @runtest alias on both the forced
# sequential path and an oversubscribed parallel domain pool, so the
# jobs=1 / jobs=N parity that the library promises (identical results
# whatever the pool width) is exercised on every PR.  A quick bench pass
# then writes BENCH_<ts>.json — the machine-readable perf-trajectory
# record tracked across PRs.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (NETFORM_JOBS=1, sequential path) =="
NETFORM_JOBS=1 dune runtest --force

echo "== dune runtest (NETFORM_JOBS=4, parallel path + full orbit differential) =="
NETFORM_JOBS=4 NETFORM_ORBIT_DIFF_FULL=1 dune runtest --force

# Store smoke: a full n=6 atlas build, a simulated crash (the part file
# truncated to 2/3 of the finished bytes), resume, CRC verification, and
# a byte-for-byte diff against the uninterrupted build — under both pool
# widths, since resume parity must hold whatever the domain fan-out.
echo "== store smoke (build / crash / resume / verify, both pool widths) =="
store_dir=$(mktemp -d)
trap 'rm -rf "$store_dir"' EXIT
for jobs in 1 4; do
  pristine="$store_dir/pristine_j$jobs.nfs"
  crashed="$store_dir/crashed_j$jobs.nfs"
  NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 6 --chunk 16 \
    -o "$pristine" --quiet
  dune exec bin/netform_cli.exe -- store verify "$pristine"
  size=$(wc -c < "$pristine")
  head -c $((size * 2 / 3)) "$pristine" > "$crashed.part"
  NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store resume -o "$crashed" --quiet
  dune exec bin/netform_cli.exe -- store verify "$crashed"
  cmp "$pristine" "$crashed"
  echo "store smoke (jobs=$jobs): resumed store byte-identical"
done
cmp "$store_dir/pristine_j1.nfs" "$store_dir/pristine_j4.nfs"
echo "store smoke: jobs=1 and jobs=4 builds byte-identical"

# Registry exhaustiveness: every game the binary knows about must survive
# the full annotate -> store build -> verify loop under both pool widths,
# with the two builds byte-identical.  The game list comes from the CLI
# itself (`games --names`), so a newly registered game is smoke-tested
# here without touching this script.
echo "== game registry smoke (annotate + store build/verify, every game, both pool widths) =="
games=$(dune exec bin/netform_cli.exe -- games --names)
[ -n "$games" ] || { echo "game registry smoke: empty registry" >&2; exit 1; }
for game in $games; do
  for jobs in 1 4; do
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- annotate -n 5 --game "$game" \
      -o "$store_dir/${game}_j$jobs.csv" > /dev/null
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 5 --chunk 8 \
      --game "$game" -o "$store_dir/${game}_j$jobs.nfs" --quiet
    dune exec bin/netform_cli.exe -- store verify "$store_dir/${game}_j$jobs.nfs"
  done
  cmp "$store_dir/${game}_j1.csv" "$store_dir/${game}_j4.csv"
  cmp "$store_dir/${game}_j1.nfs" "$store_dir/${game}_j4.nfs"
  echo "game registry smoke ($game): jobs=1 and jobs=4 annotate + store byte-identical"
  # Orbit-quotient parity: rerunning with the quotient disabled must
  # reproduce the same bytes — the quotient only skips provably repeated
  # toggles (DESIGN.md §11), so any drift here is a propagation bug.
  for jobs in 1 4; do
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- annotate -n 5 --game "$game" \
      --no-orbit-quotient -o "$store_dir/${game}_nq_j$jobs.csv" > /dev/null
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 5 --chunk 8 \
      --game "$game" --no-orbit-quotient -o "$store_dir/${game}_nq_j$jobs.nfs" --quiet
    cmp "$store_dir/${game}_j$jobs.csv" "$store_dir/${game}_nq_j$jobs.csv"
    cmp "$store_dir/${game}_j$jobs.nfs" "$store_dir/${game}_nq_j$jobs.nfs"
  done
  echo "game registry smoke ($game): quotient on/off byte-identical (both pool widths)"
done

echo "== bench smoke pass (perf-trajectory JSON, jobs=4) =="
# experiments are NOT skipped: foot7_petersen_nash_set — the orbit
# quotient's flagship row — is guarded by bench_check and must be in
# the fresh report
bench_json="BENCH_$(date +%Y%m%d_%H%M%S).json"
NETFORM_JOBS=4 NETFORM_BENCH_QUICK=1 \
  NETFORM_BENCH_JSON="$bench_json" dune exec bench/main.exe

echo "== bench regression guard (vs scripts/bench_baseline.json) =="
scripts/bench_check.sh "$bench_json"

echo "ci.sh: all green"
