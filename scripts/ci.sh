#!/bin/sh
# CI smoke job: build, then run the full @runtest alias on both the forced
# sequential path and an oversubscribed parallel domain pool, so the
# jobs=1 / jobs=N parity that the library promises (identical results
# whatever the pool width) is exercised on every PR.  A quick bench pass
# then writes BENCH_<ts>.json — the machine-readable perf-trajectory
# record tracked across PRs.
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest (NETFORM_JOBS=1, sequential path) =="
NETFORM_JOBS=1 dune runtest --force

echo "== dune runtest (NETFORM_JOBS=4, parallel path + full orbit differential) =="
NETFORM_JOBS=4 NETFORM_ORBIT_DIFF_FULL=1 dune runtest --force

# Store smoke: a full n=6 atlas build, a simulated crash (the part file
# truncated to 2/3 of the finished bytes), resume, CRC verification, and
# a byte-for-byte diff against the uninterrupted build — under both pool
# widths, since resume parity must hold whatever the domain fan-out.
echo "== store smoke (build / crash / resume / verify, both pool widths) =="
store_dir=$(mktemp -d)
trap 'rm -rf "$store_dir"' EXIT
for jobs in 1 4; do
  pristine="$store_dir/pristine_j$jobs.nfs"
  crashed="$store_dir/crashed_j$jobs.nfs"
  NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 6 --chunk 16 \
    -o "$pristine" --quiet
  dune exec bin/netform_cli.exe -- store verify "$pristine"
  size=$(wc -c < "$pristine")
  head -c $((size * 2 / 3)) "$pristine" > "$crashed.part"
  NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store resume -o "$crashed" --quiet
  dune exec bin/netform_cli.exe -- store verify "$crashed"
  cmp "$pristine" "$crashed"
  echo "store smoke (jobs=$jobs): resumed store byte-identical"
done
cmp "$store_dir/pristine_j1.nfs" "$store_dir/pristine_j4.nfs"
echo "store smoke: jobs=1 and jobs=4 builds byte-identical"

# Registry exhaustiveness: every game the binary knows about must survive
# the full annotate -> store build -> verify loop under both pool widths,
# with the two builds byte-identical.  The game list comes from the CLI
# itself (`games --names`), so a newly registered game is smoke-tested
# here without touching this script.
echo "== game registry smoke (annotate + store build/verify, every game, both pool widths) =="
games=$(dune exec bin/netform_cli.exe -- games --names)
[ -n "$games" ] || { echo "game registry smoke: empty registry" >&2; exit 1; }
for game in $games; do
  for jobs in 1 4; do
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- annotate -n 5 --game "$game" \
      -o "$store_dir/${game}_j$jobs.csv" > /dev/null
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 5 --chunk 8 \
      --game "$game" -o "$store_dir/${game}_j$jobs.nfs" --quiet
    dune exec bin/netform_cli.exe -- store verify "$store_dir/${game}_j$jobs.nfs"
  done
  cmp "$store_dir/${game}_j1.csv" "$store_dir/${game}_j4.csv"
  cmp "$store_dir/${game}_j1.nfs" "$store_dir/${game}_j4.nfs"
  echo "game registry smoke ($game): jobs=1 and jobs=4 annotate + store byte-identical"
  # Orbit-quotient parity: rerunning with the quotient disabled must
  # reproduce the same bytes — the quotient only skips provably repeated
  # toggles (DESIGN.md §11), so any drift here is a propagation bug.
  for jobs in 1 4; do
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- annotate -n 5 --game "$game" \
      --no-orbit-quotient -o "$store_dir/${game}_nq_j$jobs.csv" > /dev/null
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 5 --chunk 8 \
      --game "$game" --no-orbit-quotient -o "$store_dir/${game}_nq_j$jobs.nfs" --quiet
    cmp "$store_dir/${game}_j$jobs.csv" "$store_dir/${game}_nq_j$jobs.csv"
    cmp "$store_dir/${game}_j$jobs.nfs" "$store_dir/${game}_nq_j$jobs.nfs"
  done
  echo "game registry smoke ($game): quotient on/off byte-identical (both pool widths)"
done

# Sharded-build acceptance: for every registered game at n=6 and both
# pool widths, a 3-way sharded build (each volume its own CLI process)
# merged back together must be byte-identical to the single-process
# store, and querying the shard directory must answer exactly like the
# merged file (checked through store export, which serializes every
# record the index serves).
echo "== sharded build smoke (3 shards, merge, cmp vs single-process; every game, both pool widths) =="
for game in $games; do
  for jobs in 1 4; do
    shard_dir="$store_dir/shards_${game}_j$jobs"
    mkdir -p "$shard_dir"
    for i in 1 2 3; do
      NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 6 --chunk 16 \
        --game "$game" --shard $i/3 -o "$shard_dir/shard$i.nfs" --quiet
    done
    dune exec bin/netform_cli.exe -- store shards "$shard_dir" > /dev/null
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store merge "$shard_dir" \
      -o "$store_dir/merged_${game}_j$jobs.nfs" --quiet
    dune exec bin/netform_cli.exe -- store verify "$store_dir/merged_${game}_j$jobs.nfs" > /dev/null
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store build -n 6 --chunk 16 \
      --game "$game" -o "$store_dir/single_${game}_j$jobs.nfs" --quiet
    cmp "$store_dir/single_${game}_j$jobs.nfs" "$store_dir/merged_${game}_j$jobs.nfs"
    # the constant-memory streaming merge must emit the same bytes
    NETFORM_JOBS=$jobs dune exec bin/netform_cli.exe -- store merge "$shard_dir" --streaming \
      -o "$store_dir/streamed_${game}_j$jobs.nfs" --quiet
    cmp "$store_dir/merged_${game}_j$jobs.nfs" "$store_dir/streamed_${game}_j$jobs.nfs"
    # a directory of shard volumes must query exactly like the merged store
    dune exec bin/netform_cli.exe -- store export "$shard_dir" -o "$store_dir/dir_${game}_j$jobs.csv" > /dev/null
    dune exec bin/netform_cli.exe -- store export "$store_dir/merged_${game}_j$jobs.nfs" \
      -o "$store_dir/merged_${game}_j$jobs.csv" > /dev/null
    cmp "$store_dir/dir_${game}_j$jobs.csv" "$store_dir/merged_${game}_j$jobs.csv"
    rm -rf "$shard_dir"
  done
  cmp "$store_dir/merged_${game}_j1.nfs" "$store_dir/merged_${game}_j4.nfs"
  echo "sharded build smoke ($game): merge (in-memory and --streaming) byte-identical to single-process build (both pool widths)"
done

# Serve smoke: for every registered game and both pool widths, start a
# netform serve daemon on the n=5 store the registry smoke built, drive
# it through the remote client path, and require every served answer to
# be byte-identical to the in-process one — `query --remote` against
# `query`, figure CSV against `store query --figures --csv`, export
# against `store export`.  The daemon must then acknowledge the shutdown
# op, exit 0, and remove its socket.  The daemon is the built binary
# run directly (not through `dune exec`) so the backgrounded process
# never contends for dune's build lock.
echo "== serve smoke (daemon per game, remote vs in-process byte parity, both pool widths) =="
CLI=_build/default/bin/netform_cli.exe
for game in $games; do
  for jobs in 1 4; do
    store="$store_dir/${game}_j$jobs.nfs"
    sock="$store_dir/serve_${game}_j$jobs.sock"
    NETFORM_JOBS=$jobs "$CLI" serve "$store" --socket "$sock" --quiet &
    srv=$!
    tries=0
    until [ -S "$sock" ]; do
      tries=$((tries + 1))
      [ "$tries" -le 100 ] || { echo "serve smoke ($game): socket never appeared" >&2; exit 1; }
      sleep 0.1
    done
    "$CLI" query "$sock" --remote --stable-at 3/2 > "$store_dir/serve_remote.txt"
    "$CLI" query "$store" --stable-at 3/2 > "$store_dir/serve_local.txt"
    cmp "$store_dir/serve_remote.txt" "$store_dir/serve_local.txt"
    "$CLI" query "$sock" --remote --figures > "$store_dir/serve_figures_remote.csv"
    "$CLI" store query "$store" --figures --csv "$store_dir/serve_figures_local.csv" > /dev/null
    cmp "$store_dir/serve_figures_remote.csv" "$store_dir/serve_figures_local.csv"
    "$CLI" query "$sock" --remote --export > "$store_dir/serve_export_remote.csv"
    "$CLI" store export "$store" -o "$store_dir/serve_export_local.csv" > /dev/null
    cmp "$store_dir/serve_export_remote.csv" "$store_dir/serve_export_local.csv"
    "$CLI" query "$sock" --remote --health > /dev/null
    "$CLI" query "$sock" --remote --stats > /dev/null
    "$CLI" query "$sock" --remote --shutdown > /dev/null
    wait "$srv"
    [ ! -e "$sock" ] || { echo "serve smoke ($game): socket not removed on shutdown" >&2; exit 1; }
  done
  echo "serve smoke ($game): served answers byte-identical to in-process queries (both pool widths)"
done

# Monte-Carlo PoA smoke: the large-n workload's cross-job determinism
# contract — the same seeded run under NETFORM_JOBS=1 and =4 must emit
# byte-identical CSV.  n=64 keeps the leg past the one-word ceiling
# (2-word rows) while staying a couple of seconds end to end.
echo "== mc-poa smoke (n=64, seeded, jobs=1 vs jobs=4 CSV byte parity) =="
for jobs in 1 4; do
  NETFORM_JOBS=$jobs "$CLI" mc-poa -n 64 --alpha 2 --trials 2 --seed 42 \
    --csv "$store_dir/mc_poa_j$jobs.csv" > /dev/null
done
cmp "$store_dir/mc_poa_j1.csv" "$store_dir/mc_poa_j4.csv"
echo "mc-poa smoke: jobs=1 and jobs=4 CSVs byte-identical"

# Full leg (opt-in, minutes of CPU): stream all of n=10 through a sharded
# split and check the connected-class count against OEIS A001349.
if [ "${NETFORM_COUNTS_FULL:-0}" = "1" ]; then
  echo "== full counts leg (n=10 sharded streaming count vs A001349) =="
  NETFORM_COUNTS_FULL=1 dune exec test/test_enum.exe -- -e sharding
fi

echo "== bench smoke pass (perf-trajectory JSON, jobs=4) =="
# experiments are NOT skipped: foot7_petersen_nash_set — the orbit
# quotient's flagship row — is guarded by bench_check and must be in
# the fresh report
bench_json="BENCH_$(date +%Y%m%d_%H%M%S).json"
NETFORM_JOBS=4 NETFORM_BENCH_QUICK=1 \
  NETFORM_BENCH_JSON="$bench_json" dune exec bench/main.exe

echo "== bench regression guard (vs scripts/bench_baseline.json) =="
scripts/bench_check.sh "$bench_json"

echo "ci.sh: all green"
