#!/bin/sh
# Bench regression guard: compare a freshly emitted BENCH_<ts>.json against
# the committed baseline and fail when any guarded row regressed past the
# tolerance factor.
#
#   usage: scripts/bench_check.sh FRESH.json [BASELINE.json]
#
# Guarded rows are the netform/kernels/, netform/store/, netform/games/,
# netform/serve/ and netform/dynamics/ groups — the substrate the
# experiment rows sit on, the registry-driven game annotation path, the
# serving stack, the large-n Monte-Carlo workload — and the
# foot7_petersen_nash_set experiment row, the orbit quotient's flagship
# trajectory (DESIGN.md §11).  Rows whose baseline estimate is
# below the noise floor are reported but never fail the check (micro-rows
# jitter far beyond any honest tolerance under the quick-quota smoke), and
# a guarded baseline row missing from the fresh report is an error.
#
#   NETFORM_BENCH_TOLERANCE   allowed slowdown factor (default 2.0)
#   NETFORM_BENCH_MIN_NS      noise floor in ns/run     (default 1000000)
set -eu

fresh=${1:?usage: bench_check.sh FRESH.json [BASELINE.json]}
baseline=${2:-$(dirname "$0")/bench_baseline.json}
tolerance=${NETFORM_BENCH_TOLERANCE:-2.0}
min_ns=${NETFORM_BENCH_MIN_NS:-1000000}

[ -f "$fresh" ] || { echo "bench_check: fresh report $fresh not found" >&2; exit 2; }
[ -f "$baseline" ] || { echo "bench_check: baseline $baseline not found" >&2; exit 2; }

# one "name ns" pair per line out of the netform-bench/1 JSON layout
extract() {
  awk -F'"' '
    /"name":/ && /"ns_per_run":/ {
      name = $4
      line = $0
      sub(/.*"ns_per_run": */, "", line)
      sub(/[^0-9.].*$/, "", line)
      if (line != "") print name, line
    }' "$1"
}

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
extract "$fresh" > "$tmp/fresh"
extract "$baseline" > "$tmp/baseline"

awk -v tolerance="$tolerance" -v min_ns="$min_ns" '
  NR == FNR { fresh[$1] = $2; next }
  $1 ~ /^netform\/(kernels|store|games|serve|dynamics)\// || $1 == "netform/experiments/foot7_petersen_nash_set" {
    base = $2
    if (!($1 in fresh)) {
      printf "MISSING   %-55s (in baseline, absent from fresh report)\n", $1
      failed = 1
      next
    }
    now = fresh[$1]
    ratio = (base > 0) ? now / base : 0
    if (base < min_ns) {
      printf "noise     %-55s %12.0f -> %12.0f ns (%.2fx, below %d ns floor)\n", \
        $1, base, now, ratio, min_ns
    } else if (now > base * tolerance) {
      printf "REGRESSED %-55s %12.0f -> %12.0f ns (%.2fx > %.2fx)\n", \
        $1, base, now, ratio, tolerance
      failed = 1
    } else {
      printf "ok        %-55s %12.0f -> %12.0f ns (%.2fx)\n", $1, base, now, ratio
    }
    guarded++
  }
  END {
    if (guarded == 0) { print "bench_check: no guarded rows found in baseline"; exit 2 }
    exit failed ? 1 : 0
  }' "$tmp/fresh" "$tmp/baseline"

echo "bench_check: no kernel/store/games/serve/dynamics row regressed past ${tolerance}x"
